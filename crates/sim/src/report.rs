//! Run reports: what one simulated execution produced.

use dlb_core::{DlbStats, Strategy};
use now_fault::FaultReport;
use serde::{Deserialize, Serialize};

/// Per-processor summary of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcSummary {
    /// Iterations this processor executed.
    pub iters_done: u64,
    /// Time it finished its last activity (compute or send).
    pub finished_at: f64,
    /// Base-processor seconds of work it executed.
    pub work_done: f64,
}

/// One runtime strategy switch taken by the adaptive re-decision loop
/// (§S17): at an episode boundary the observed rates and fault picture
/// predicted `to` enough ahead of `from` to clear the hysteresis gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchRecord {
    /// Simulated time of the handover.
    pub at: f64,
    /// Engine-global episode sequence number at the switch (all episodes
    /// with id ≤ this ran under `from`; later ones under `to`).
    pub episode: u64,
    pub from: Strategy,
    pub to: Strategy,
    /// Model-predicted remaining time under the incumbent strategy.
    pub predicted_current: f64,
    /// Model-predicted remaining time under the newly chosen strategy.
    pub predicted_new: f64,
}

/// Accounting of the adaptive re-decision loop (§S17); present only on
/// [`RunReport`]s produced by an adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Re-decisions evaluated (model consultations at episode
    /// boundaries, whether or not they led to a switch).
    pub decisions: u64,
    /// Switches taken, in order.
    pub switches: Vec<SwitchRecord>,
    /// Old-regime messages dropped by the epoch guards after a switch
    /// (stale interrupts and instructions).
    pub stale_dropped: u64,
    /// Invariant counter — old-epoch instructions that *acted* anyway.
    /// Must be zero: the epoch guard runs before the act path.
    pub stale_applied: u64,
    /// Invariant counter — switches performed while any episode was
    /// open. Must be zero: re-decision requires global quiescence.
    pub mid_episode_switches: u64,
    /// Boundary evaluations deferred (another group's episode still
    /// open, a partition active, or fewer than two live processors).
    pub deferred: u64,
    /// Strategy in effect when the run completed.
    pub final_strategy: Strategy,
}

/// Outcome of one simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Strategy used; `None` for the no-DLB baseline.
    pub strategy: Option<Strategy>,
    /// Total execution time (makespan), simulated seconds.
    pub total_time: f64,
    /// DLB statistics (all zero for no-DLB).
    pub stats: DlbStats,
    /// Per-processor summaries.
    pub per_proc: Vec<ProcSummary>,
    /// Times of each synchronization decision.
    pub sync_times: Vec<f64>,
    /// Total iterations executed (must equal the workload's count).
    pub total_iters: u64,
    /// Fault-injection accounting; `None` when the run had no fault plan
    /// (the failure-aware machinery never engaged).
    pub faults: Option<FaultReport>,
    /// Adaptive re-customization accounting (§S17); `None` unless the
    /// run used [`crate::runner::run_dlb_adaptive`] or the engine's
    /// `with_adaptive`.
    pub adaptive: Option<AdaptiveReport>,
}

impl RunReport {
    /// Execution time normalized to a baseline (the paper's figures plot
    /// time normalized to the no-DLB run of the same configuration).
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        assert!(
            baseline.total_time > 0.0,
            "baseline must have positive time"
        );
        self.total_time / baseline.total_time
    }

    /// Label for tables: strategy abbreviation or "noDLB".
    pub fn label(&self) -> &'static str {
        self.strategy.map_or("noDLB", |s| s.abbrev())
    }
}

/// Rank strategies best-first by total time (ties broken by the paper's
/// reporting order GC, GD, LC, LD).
pub fn rank_strategies(reports: &[RunReport]) -> Vec<Strategy> {
    let mut with: Vec<(Strategy, f64)> = reports
        .iter()
        .filter_map(|r| r.strategy.map(|s| (s, r.total_time)))
        .collect();
    with.sort_by(|a, b| {
        a.1.total_cmp(&b.1)
            .then_with(|| a.0.paper_rank().cmp(&b.0.paper_rank()))
    });
    with.into_iter().map(|(s, _)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(strategy: Option<Strategy>, t: f64) -> RunReport {
        RunReport {
            strategy,
            total_time: t,
            stats: DlbStats::default(),
            per_proc: vec![],
            sync_times: vec![],
            total_iters: 0,
            faults: None,
            adaptive: None,
        }
    }

    #[test]
    fn normalization() {
        let base = rep(None, 10.0);
        let run = rep(Some(Strategy::Gddlb), 4.0);
        assert!((run.normalized_to(&base) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(rep(None, 1.0).label(), "noDLB");
        assert_eq!(rep(Some(Strategy::Lcdlb), 1.0).label(), "LC");
    }

    #[test]
    fn ranking_sorts_by_time() {
        let reports = vec![
            rep(Some(Strategy::Gcdlb), 3.0),
            rep(Some(Strategy::Gddlb), 1.0),
            rep(Some(Strategy::Lcdlb), 4.0),
            rep(Some(Strategy::Lddlb), 2.0),
            rep(None, 9.0),
        ];
        let order = rank_strategies(&reports);
        assert_eq!(
            order,
            vec![
                Strategy::Gddlb,
                Strategy::Lddlb,
                Strategy::Gcdlb,
                Strategy::Lcdlb
            ]
        );
    }

    #[test]
    fn ranking_tie_breaks_in_paper_order() {
        let reports = vec![
            rep(Some(Strategy::Lddlb), 1.0),
            rep(Some(Strategy::Gcdlb), 1.0),
        ];
        let order = rank_strategies(&reports);
        assert_eq!(order, vec![Strategy::Gcdlb, Strategy::Lddlb]);
    }
}

//! Central-task-queue baselines on the simulated NOW.
//!
//! Executes the Section-2.2 schemes (`dlb_core::loopsched`) against the
//! same cluster, load functions and medium as the DLB strategies: an idle
//! processor sends a request to the master's queue, the reply grants the
//! next chunk (both messages through the FCFS medium, with the usual
//! endpoint load factors), and — unlike shared-memory task queues — each
//! granted iteration's array data must travel with the grant, exactly the
//! penalty that makes naive task queues unattractive on a NOW.

use crate::cluster::ClusterSpec;
use crate::report::{ProcSummary, RunReport};
use dlb_core::loopsched::{ChunkQueue, ChunkScheme};
use dlb_core::work::LoopWorkload;
use dlb_core::DlbStats;
use now_net::medium::EndpointFactors;
use now_net::MediumSim;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const REQUEST_BYTES: usize = 16;
const GRANT_HEADER_BYTES: usize = 24;

#[derive(Debug, PartialEq)]
struct Ev {
    time: f64,
    seq: u64,
    proc: usize,
    kind: EvKind,
}

#[derive(Debug, PartialEq, Eq)]
enum EvKind {
    /// The processor finished its current chunk and its request for the
    /// next one reaches the master now.
    RequestArrives,
    /// The grant (chunk + data) reaches the processor now.
    GrantArrives { start: u64, len: u64 },
}

impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Run `workload` under a central-task-queue `scheme` on `cluster`.
///
/// The master (processor 0 of the cluster) owns the queue and also
/// computes; its queue service costs pass through the medium like any
/// other message.
pub fn run_task_queue(
    cluster: &ClusterSpec,
    workload: &dyn LoopWorkload,
    scheme: ChunkScheme,
) -> RunReport {
    cluster.validate();
    let p = cluster.processors();
    let clocks = cluster.clocks();
    let mut medium = MediumSim::new(cluster.net, p);
    let mut queue = ChunkQueue::new(scheme, workload.iterations(), p);
    let mut next_index = 0u64;
    let master = cluster.master;

    let mut events: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut iters_done = vec![0u64; p];
    let mut work_done = vec![0.0f64; p];
    let mut finished_at = vec![0.0f64; p];
    let mut stats = DlbStats::default();

    // Everyone asks for its first chunk at t = 0 (requests traverse the
    // medium; the master's own request is local).
    for proc in 0..p {
        seq += 1;
        let arrive = if proc == master {
            0.0
        } else {
            let t = medium.send(proc, master, REQUEST_BYTES, 0.0);
            stats.control_messages += 1;
            t.delivered
        };
        events.push(Reverse(Ev {
            time: arrive,
            seq,
            proc,
            kind: EvKind::RequestArrives,
        }));
    }

    let bpi = workload.bytes_per_iter();
    while let Some(Reverse(ev)) = events.pop() {
        let now = ev.time;
        match ev.kind {
            EvKind::RequestArrives => {
                let Some(len) = queue.next_chunk() else {
                    finished_at[ev.proc] = finished_at[ev.proc].max(now);
                    continue;
                };
                let start = next_index;
                next_index += len;
                stats.syncs += 1; // one queue transaction
                let bytes = GRANT_HEADER_BYTES + (len * bpi) as usize;
                let arrive = if ev.proc == master {
                    now
                } else {
                    stats.transfer_messages += 1;
                    stats.bytes_moved += len * bpi;
                    let load = clocks[master].load().slowdown_at(now);
                    let t = medium.send_with_factors(
                        master,
                        ev.proc,
                        bytes,
                        now,
                        EndpointFactors {
                            send: load.max(1.0),
                            recv: 1.0,
                        },
                    );
                    t.delivered
                };
                seq += 1;
                events.push(Reverse(Ev {
                    time: arrive,
                    seq,
                    proc: ev.proc,
                    kind: EvKind::GrantArrives { start, len },
                }));
            }
            EvKind::GrantArrives { start, len } => {
                // Compute the chunk under this processor's load, then
                // request the next one.
                let work = workload.range_cost(start, start + len);
                let done = clocks[ev.proc].finish_time(now, work);
                iters_done[ev.proc] += len;
                work_done[ev.proc] += work;
                finished_at[ev.proc] = done;
                seq += 1;
                let arrive = if ev.proc == master {
                    done
                } else {
                    stats.control_messages += 1;
                    medium.send(ev.proc, master, REQUEST_BYTES, done).delivered
                };
                events.push(Reverse(Ev {
                    time: arrive,
                    seq,
                    proc: ev.proc,
                    kind: EvKind::RequestArrives,
                }));
            }
        }
    }

    let total: u64 = iters_done.iter().sum();
    assert_eq!(total, workload.iterations(), "task queue lost iterations");
    RunReport {
        strategy: None,
        total_time: finished_at.iter().copied().fold(0.0, f64::max),
        stats,
        per_proc: (0..p)
            .map(|i| ProcSummary {
                iters_done: iters_done[i],
                finished_at: finished_at[i],
                work_done: work_done[i],
            })
            .collect(),
        sync_times: Vec::new(),
        total_iters: total,
        faults: None,
        adaptive: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::work::UniformLoop;
    use now_load::LoadSpec;

    #[test]
    fn all_schemes_complete_the_loop() {
        let wl = UniformLoop::new(200, 0.005, 512);
        let cluster = ClusterSpec::paper_homogeneous(4, 5, 0.3);
        for scheme in ChunkScheme::standard_set(200, 4) {
            let r = run_task_queue(&cluster, &wl, scheme);
            assert_eq!(r.total_iters, 200, "{}", scheme.label());
            assert!(r.total_time.is_finite() && r.total_time > 0.0);
        }
    }

    #[test]
    fn self_scheduling_pays_per_iteration_round_trips() {
        let wl = UniformLoop::new(100, 0.001, 64);
        let cluster = ClusterSpec::dedicated(4);
        let ss = run_task_queue(&cluster, &wl, ChunkScheme::SelfScheduling);
        let gss = run_task_queue(&cluster, &wl, ChunkScheme::Guided);
        assert!(ss.stats.syncs > gss.stats.syncs * 5);
        assert!(
            ss.total_time > gss.total_time,
            "SS {} should lose to GSS {} on a NOW",
            ss.total_time,
            gss.total_time
        );
    }

    #[test]
    fn task_queue_balances_a_straggler() {
        let wl = UniformLoop::new(400, 0.01, 512);
        let mut cluster = ClusterSpec::dedicated(4);
        cluster.loads[2] = LoadSpec::Constant { level: 5 };
        let r = run_task_queue(&cluster, &wl, ChunkScheme::Guided);
        // The straggler (1/6 speed) must end up with far less than 1/4.
        assert!(
            r.per_proc[2].iters_done < 60,
            "straggler got {} iterations",
            r.per_proc[2].iters_done
        );
    }

    #[test]
    fn deterministic() {
        let wl = UniformLoop::new(150, 0.004, 128);
        let cluster = ClusterSpec::paper_homogeneous(4, 9, 0.2);
        let a = run_task_queue(&cluster, &wl, ChunkScheme::Factoring);
        let b = run_task_queue(&cluster, &wl, ChunkScheme::Factoring);
        assert_eq!(a, b);
    }
}

//! Cluster description: the "network of workstations" under test.

use now_load::{LoadFunction, LoadSpec, WorkClock};
use now_net::NetworkParams;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A NOW: processor speeds, per-processor external load, and the
/// interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Relative speed `S_i` of each processor (1.0 = the base processor).
    pub speeds: Vec<f64>,
    /// External load function of each processor.
    pub loads: Vec<LoadSpec>,
    /// Interconnect parameters.
    pub net: NetworkParams,
    /// The master processor hosting the centralized balancer (and the
    /// pseudo-master duties). The paper uses processor 0.
    pub master: usize,
}

impl ClusterSpec {
    /// The paper's experimental setup: `p` homogeneous processors
    /// (SPARC LX's, `S_i = 1`), independent discrete random load with
    /// `m_l = 5` and the given persistence, Ethernet/PVM network.
    pub fn paper_homogeneous(p: usize, load_seed: u64, persistence: f64) -> Self {
        assert!(p > 0);
        Self {
            speeds: vec![1.0; p],
            loads: (0..p)
                .map(|i| LoadSpec::paper_for_processor(load_seed, i, persistence))
                .collect(),
            net: NetworkParams::paper_ethernet(),
            master: 0,
        }
    }

    /// A dedicated (zero-load) homogeneous cluster — useful for protocol
    /// tests where timing must be exact.
    pub fn dedicated(p: usize) -> Self {
        assert!(p > 0);
        Self {
            speeds: vec![1.0; p],
            loads: vec![LoadSpec::Zero; p],
            net: NetworkParams::paper_ethernet(),
            master: 0,
        }
    }

    /// A heterogeneous dedicated cluster with explicit speeds.
    pub fn heterogeneous(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty());
        let p = speeds.len();
        Self {
            speeds,
            loads: vec![LoadSpec::Zero; p],
            net: NetworkParams::paper_ethernet(),
            master: 0,
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.speeds.len()
    }

    /// Build the per-processor work clocks.
    pub fn clocks(&self) -> Vec<WorkClock> {
        self.validate();
        self.speeds
            .iter()
            .zip(&self.loads)
            .map(|(&s, l)| WorkClock::new(l.build(), s))
            .collect()
    }

    /// Build the per-processor load functions.
    pub fn load_functions(&self) -> Vec<Arc<dyn LoadFunction>> {
        self.loads.iter().map(LoadSpec::build).collect()
    }

    /// Check internal consistency.
    ///
    /// # Panics
    /// Panics if speeds/loads disagree in length, any speed is
    /// non-positive, or the master is out of range.
    pub fn validate(&self) {
        assert_eq!(
            self.speeds.len(),
            self.loads.len(),
            "speeds/loads length mismatch"
        );
        assert!(!self.speeds.is_empty(), "need at least one processor");
        assert!(
            self.speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speeds must be positive"
        );
        assert!(self.master < self.speeds.len(), "master out of range");
        self.net.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterSpec::paper_homogeneous(16, 42, 1.0);
        assert_eq!(c.processors(), 16);
        assert_eq!(c.master, 0);
        c.validate();
        assert_eq!(c.clocks().len(), 16);
    }

    #[test]
    fn per_processor_loads_differ() {
        let c = ClusterSpec::paper_homogeneous(4, 42, 1.0);
        let fs = c.load_functions();
        let differs = (0..50).any(|k| fs[0].level(k) != fs[1].level(k));
        assert!(differs);
    }

    #[test]
    fn dedicated_cluster_is_unloaded() {
        let c = ClusterSpec::dedicated(4);
        for f in c.load_functions() {
            assert_eq!(f.max_level(), 0);
        }
    }

    #[test]
    fn heterogeneous_speeds_respected() {
        let c = ClusterSpec::heterogeneous(vec![1.0, 2.0, 0.5]);
        let clocks = c.clocks();
        assert!((clocks[1].speed() - 2.0).abs() < 1e-12);
        assert!((clocks[2].speed() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "master")]
    fn master_out_of_range_rejected() {
        let mut c = ClusterSpec::dedicated(2);
        c.master = 5;
        c.validate();
    }
}

//! `dlb-compile` — the compile-time half of the paper's hybrid system.
//!
//! The paper uses SUIF to translate annotated sequential C into an SPMD
//! PVM program with DLB library calls (Section 5). This crate rebuilds
//! that pipeline for a small annotated loop-nest language:
//!
//! ```text
//! param R; param C; param R2;
//! array Z[R][C]  distribute(block, whole);
//! array X[R][R2] distribute(block, whole) moves;
//! array Y[R2][C] replicate;
//! balance for i = 0..R {
//!   for j = 0..C {
//!     for k = 0..R2 {
//!       Z[i][j] += X[i][k] * Y[k][j];
//!     }
//!   }
//! }
//! ```
//!
//! The pipeline:
//!
//! 1. [`lexer`] / [`parser`] — source → AST ([`ast`]);
//! 2. [`analyze`] — semantic checks plus the *symbolic cost functions* the
//!    model needs: basic operations per iteration of each balanced loop
//!    (`W_ij`, counted from the statement operators times the inner trip
//!    counts) and data communication per moved iteration (`DC_a`, from
//!    the distribution annotations);
//! 3. triangular loops (inner bounds referencing the balanced index) are
//!    detected and — as in the paper ([4], used for TRFD's second loop) —
//!    made uniform by **bitonic folding**;
//! 4. [`codegen`] — emits (a) an executable [`codegen::BoundLoop`] (a
//!    `dlb_core::LoopWorkload` plus `DlbArray` descriptors) once the
//!    symbolic parameters are bound to values, and (b) the transformed
//!    SPMD pseudo-code with DLB calls, mirroring the paper's Fig. 3.

pub mod analyze;
pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;

pub use analyze::{analyze, AnalyzedProgram, CompileError};
pub use codegen::{BoundLoop, BoundProgram};

use std::collections::BTreeMap;

/// One-call front end: compile source text into an analyzed program.
pub fn compile(source: &str) -> Result<AnalyzedProgram, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    analyze(program)
}

/// Convenience: compile and bind parameters in one step.
pub fn compile_and_bind(
    source: &str,
    bindings: &BTreeMap<String, u64>,
) -> Result<BoundProgram, CompileError> {
    compile(source)?.bind(bindings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::work::LoopWorkload;

    pub(crate) const MXM_SOURCE: &str = r#"
        param R; param C; param R2;
        array Z[R][C]  distribute(block, whole);
        array X[R][R2] distribute(block, whole) moves;
        array Y[R2][C] replicate;
        balance for i = 0..R {
          for j = 0..C {
            for k = 0..R2 {
              Z[i][j] += X[i][k] * Y[k][j];
            }
          }
        }
    "#;

    #[test]
    fn end_to_end_mxm_matches_paper_figures() {
        let mut bind = BTreeMap::new();
        bind.insert("R".to_string(), 400u64);
        bind.insert("C".to_string(), 400);
        bind.insert("R2".to_string(), 400);
        let bound = compile_and_bind(MXM_SOURCE, &bind).expect("compiles");
        assert_eq!(bound.loops.len(), 1);
        let l = &bound.loops[0];
        assert!(l.uniform);
        assert_eq!(l.workload.iterations(), 400);
        // W = C * R2 * 2 ops per outer iteration (mul + add), DC = one
        // row of X = R2 doubles.
        assert!((l.ops_per_iter(0) - 2.0 * 400.0 * 400.0).abs() < 1e-9);
        assert_eq!(l.workload.bytes_per_iter(), 400 * 8);
    }
}

//! Code generation: executable plans and SPMD pseudo-code (Fig. 3).

use crate::analyze::{ops_of_body, AnalyzedProgram, CompileError};
use crate::ast::{DimDist, Loop, Node};
use dlb_core::arrays::{DataDistribution, DlbArray};
use dlb_core::work::{CostFnLoop, FoldedLoop, LoopWorkload, UniformLoop};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default calibration used by [`AnalyzedProgram::bind`]: basic operations
/// per second of the base processor. Matches `dlb_apps::BASE_OPS_PER_SEC`
/// (asserted by the workspace integration tests).
pub const DEFAULT_OPS_PER_SEC: f64 = 5.0e6;

/// A balanced loop bound to concrete parameter values: ready to run on the
/// simulator or the threaded runtime.
pub struct BoundLoop {
    /// Balanced index variable.
    pub var: String,
    /// Whether the source loop was uniform (before any folding).
    pub uniform: bool,
    /// Whether bitonic folding was applied (triangular source loop).
    pub folded: bool,
    /// The runnable work model.
    pub workload: Arc<dyn LoopWorkload>,
    /// Shared-array descriptors with concrete extents.
    pub arrays: Vec<DlbArray>,
    // retained for ops_per_iter queries
    ast: Loop,
    env: BTreeMap<String, i64>,
}

impl BoundLoop {
    /// Basic operations of (unfolded) iteration `i`.
    pub fn ops_per_iter(&self, i: u64) -> f64 {
        let mut env = self.env.clone();
        env.insert(self.ast.var.clone(), i as i64);
        ops_of_body(&self.ast.body, &mut env)
    }
}

impl std::fmt::Debug for BoundLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundLoop")
            .field("var", &self.var)
            .field("uniform", &self.uniform)
            .field("folded", &self.folded)
            .field("iterations", &self.workload.iterations())
            .finish_non_exhaustive()
    }
}

/// A fully bound program.
#[derive(Debug)]
pub struct BoundProgram {
    /// Balanced loops in source order (non-balanced top-level loops are
    /// not parallelized and are omitted).
    pub loops: Vec<BoundLoop>,
}

impl AnalyzedProgram {
    /// Bind symbolic parameters to values with the default calibration.
    ///
    /// # Errors
    /// Returns an error if a parameter is missing or a bound evaluates to
    /// a negative extent.
    pub fn bind(&self, bindings: &BTreeMap<String, u64>) -> Result<BoundProgram, CompileError> {
        self.bind_with_rate(bindings, DEFAULT_OPS_PER_SEC)
    }

    /// Bind with an explicit basic-operations-per-second calibration.
    pub fn bind_with_rate(
        &self,
        bindings: &BTreeMap<String, u64>,
        ops_per_sec: f64,
    ) -> Result<BoundProgram, CompileError> {
        assert!(ops_per_sec > 0.0 && ops_per_sec.is_finite());
        for p in &self.program.params {
            if !bindings.contains_key(p) {
                return Err(CompileError::at(
                    0,
                    format!("missing binding for parameter '{p}'"),
                ));
            }
        }
        let env: BTreeMap<String, i64> = bindings
            .iter()
            .map(|(k, &v)| (k.clone(), v as i64))
            .collect();

        // Concrete array descriptors.
        let arrays: Vec<DlbArray> = self
            .program
            .arrays
            .iter()
            .map(|a| {
                let dims: Vec<u64> = a.dims.iter().map(|d| d.eval(&env).max(0) as u64).collect();
                let distribution = a.dist.iter().position(|d| *d != DimDist::Whole).map_or(
                    DataDistribution::Whole,
                    |dim| match a.dist[dim] {
                        DimDist::Block => DataDistribution::Block { dim },
                        DimDist::Cyclic => DataDistribution::Cyclic { dim },
                        DimDist::Whole => unreachable!(),
                    },
                );
                DlbArray {
                    name: a.name.clone(),
                    dims,
                    elem_bytes: 8,
                    distribution,
                    moves_with_work: a.moves,
                }
            })
            .collect();
        let bytes_per_iter = dlb_core::arrays::bytes_per_iteration(&arrays);

        let mut out = Vec::new();
        for (ast, info) in self.program.loops.iter().zip(&self.loops) {
            if !info.balance {
                continue;
            }
            let lo = ast.lo.eval(&env);
            let hi = ast.hi.eval(&env);
            if hi < lo {
                return Err(CompileError::at(
                    ast.line,
                    format!("loop {} has negative trip count after binding", ast.var),
                ));
            }
            let iterations = (hi - lo) as u64;
            let workload: Arc<dyn LoopWorkload> = if info.uniform {
                let mut e = env.clone();
                e.insert(ast.var.clone(), lo);
                let ops = ops_of_body(&ast.body, &mut e);
                // Guard against empty bodies: a zero-cost loop is a
                // compile error rather than a degenerate workload.
                if ops <= 0.0 {
                    return Err(CompileError::at(
                        ast.line,
                        format!("balanced loop {} performs no work", ast.var),
                    ));
                }
                Arc::new(UniformLoop::new(
                    iterations,
                    ops / ops_per_sec,
                    bytes_per_iter,
                ))
            } else {
                // Triangular: per-iteration cost function + the bitonic
                // transformation to make the balanced loop uniform.
                let body = ast.body.clone();
                let var = ast.var.clone();
                let base_env = env.clone();
                let raw = CostFnLoop::new(iterations, bytes_per_iter, move |i| {
                    let mut e = base_env.clone();
                    e.insert(var.clone(), lo + i as i64);
                    // An empty triangular prefix still takes ≥1 op to model
                    // loop control, avoiding zero-cost iterations.
                    ops_of_body(&body, &mut e).max(1.0) / ops_per_sec
                });
                Arc::new(FoldedLoop::new(raw))
            };
            out.push(BoundLoop {
                var: ast.var.clone(),
                uniform: info.uniform,
                folded: !info.uniform,
                workload,
                arrays: arrays.clone(),
                ast: ast.clone(),
                env: env.clone(),
            });
        }
        Ok(BoundProgram { loops: out })
    }

    /// Emit the transformed SPMD pseudo-code with DLB library calls,
    /// mirroring the paper's Fig. 3.
    pub fn emit_spmd(&self) -> String {
        let mut s = String::new();
        let array_args: Vec<String> = self
            .program
            .arrays
            .iter()
            .map(|a| format!("&DLB_array_{}", a.name))
            .collect();
        s.push_str("/* generated by dlb-compile (cf. paper Fig. 3) */\n");
        s.push_str(&format!(
            "DLB_init(argcnt, &dlb, P, K, task_ids, master_tid, {});\n",
            array_args.join(", ")
        ));
        s.push_str("DLB_scatter_data(&dlb);\n");
        s.push_str("if (master)\n    DLB_master_sync(&dlb);\nelse {\n");
        for (ast, info) in self.program.loops.iter().zip(&self.loops) {
            if !info.balance {
                s.push_str(&format!(
                    "    /* loop over {} is not annotated; runs with the static split */\n",
                    ast.var
                ));
                continue;
            }
            if !info.uniform {
                s.push_str(&format!(
                    "    /* triangular loop {v}: bitonic transformation pairs iteration i with N-1-i */\n",
                    v = ast.var
                ));
            }
            s.push_str("    while (dlb.more_work) {\n");
            s.push_str(&format!(
                "        for ({v} = dlb.start; {v} < dlb.end && dlb.more_work; {v}++) {{\n",
                v = ast.var
            ));
            emit_body(&mut s, &ast.body, 12);
            s.push_str("            if (DLB_slave_sync(&dlb) && dlb.interrupt)\n");
            s.push_str("                DLB_profile_send_move_work(&dlb);\n");
            s.push_str("        }\n");
            s.push_str("        if (dlb.more_work) {\n");
            s.push_str("            DLB_send_interrupt(&dlb);\n");
            s.push_str("            DLB_profile_send_move_work(&dlb);\n");
            s.push_str("        }\n");
            s.push_str("    }\n");
        }
        s.push_str("}\nDLB_gather_data(&dlb);\n");
        s
    }
}

fn emit_body(s: &mut String, body: &[Node], indent: usize) {
    let pad = " ".repeat(indent);
    for node in body {
        match node {
            Node::Loop(l) => {
                s.push_str(&format!(
                    "{pad}for ({v} = {lo}; {v} < {hi}; {v}++) {{\n",
                    v = l.var,
                    lo = l.lo,
                    hi = l.hi
                ));
                emit_body(s, &l.body, indent + 4);
                s.push_str(&format!("{pad}}}\n"));
            }
            Node::Stmt(st) => {
                let op = if st.accumulate { "+=" } else { "=" };
                s.push_str(&format!("{pad}{} {op} {};\n", st.target, st.value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const MXM: &str = r#"
        param R; param C; param R2;
        array Z[R][C]  distribute(block, whole);
        array X[R][R2] distribute(block, whole) moves;
        array Y[R2][C] replicate;
        balance for i = 0..R {
          for j = 0..C { for k = 0..R2 { Z[i][j] += X[i][k] * Y[k][j]; } }
        }
    "#;

    const TRIANGULAR: &str = r#"
        param N;
        array A[N][N] distribute(whole, block) moves;
        balance for i = 0..N {
          for j = 0..i { A[j][i] += A[i][j] * 2; }
        }
    "#;

    fn bind(src: &str, pairs: &[(&str, u64)]) -> BoundProgram {
        let b: BTreeMap<String, u64> = pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        compile(src).unwrap().bind(&b).unwrap()
    }

    #[test]
    fn mxm_binds_to_uniform_workload() {
        let p = bind(MXM, &[("R", 100), ("C", 40), ("R2", 30)]);
        let l = &p.loops[0];
        assert!(l.uniform && !l.folded);
        assert_eq!(l.workload.iterations(), 100);
        // 2 ops * 40 * 30 per iteration.
        assert!((l.ops_per_iter(7) - 2400.0).abs() < 1e-9);
        assert!((l.workload.iter_cost(0) - 2400.0 / DEFAULT_OPS_PER_SEC).abs() < 1e-15);
        // Only X moves: one row of R2 doubles.
        assert_eq!(l.workload.bytes_per_iter(), 30 * 8);
    }

    #[test]
    fn array_descriptors_concretized() {
        let p = bind(MXM, &[("R", 100), ("C", 40), ("R2", 30)]);
        let arrays = &p.loops[0].arrays;
        assert_eq!(arrays.len(), 3);
        assert_eq!(arrays[0].dims, vec![100, 40]);
        assert_eq!(arrays[0].distribution, DataDistribution::Block { dim: 0 });
        assert!(!arrays[0].moves_with_work);
        assert!(arrays[1].moves_with_work);
        assert_eq!(arrays[2].distribution, DataDistribution::Whole);
    }

    #[test]
    fn triangular_loop_gets_folded() {
        let p = bind(TRIANGULAR, &[("N", 16)]);
        let l = &p.loops[0];
        assert!(!l.uniform && l.folded);
        // 16 raw iterations fold to 8.
        assert_eq!(l.workload.iterations(), 8);
        // Folded cost is near-uniform: pair (i, N-1-i) always sums ~N ops.
        let c0 = l.workload.iter_cost(0);
        let c3 = l.workload.iter_cost(3);
        assert!((c0 - c3).abs() / c0 < 0.2, "c0={c0}, c3={c3}");
    }

    #[test]
    fn raw_triangular_cost_matches_trip_count() {
        let p = bind(TRIANGULAR, &[("N", 16)]);
        let l = &p.loops[0];
        // iteration i runs i inner iterations x 2 ops
        assert!((l.ops_per_iter(5) - 10.0).abs() < 1e-9);
        assert!((l.ops_per_iter(0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn missing_binding_is_an_error() {
        let a = compile(MXM).unwrap();
        let b: BTreeMap<String, u64> = [("R".to_string(), 10u64)].into();
        let e = a.bind(&b).unwrap_err();
        assert!(e.message.contains("missing binding"), "{e}");
    }

    #[test]
    fn pseudocode_mirrors_fig3() {
        let a = compile(MXM).unwrap();
        let code = a.emit_spmd();
        for needle in [
            "DLB_init(",
            "DLB_scatter_data(&dlb)",
            "DLB_master_sync(&dlb)",
            "DLB_slave_sync(&dlb)",
            "DLB_send_interrupt(&dlb)",
            "DLB_profile_send_move_work(&dlb)",
            "DLB_gather_data(&dlb)",
            "&DLB_array_Z, &DLB_array_X, &DLB_array_Y",
            "Z[i][j] += (X[i][k] * Y[k][j]);",
        ] {
            assert!(code.contains(needle), "missing {needle} in:\n{code}");
        }
    }

    #[test]
    fn pseudocode_notes_bitonic_transformation() {
        let a = compile(TRIANGULAR).unwrap();
        let code = a.emit_spmd();
        assert!(code.contains("bitonic"), "{code}");
    }

    #[test]
    fn unbalanced_loops_are_skipped() {
        let src = "param N; array A[N] distribute(block);\nfor i = 0..N { A[i] = 1; }";
        let p = bind(src, &[("N", 8)]);
        assert!(p.loops.is_empty());
    }
}

//! Tokenizer for the annotated loop-nest language.

use crate::analyze::CompileError;

/// A lexical token with its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    Int(u64),
    // keywords
    Param,
    Array,
    Distribute,
    Replicate,
    Moves,
    Balance,
    For,
    Block,
    Cyclic,
    Whole,
    // punctuation
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Semi,
    Comma,
    Assign,
    PlusAssign,
    Plus,
    Minus,
    Star,
    Slash,
    DotDot,
    Eof,
}

/// Tokenize `source`.
///
/// # Errors
/// Returns [`CompileError`] on unrecognized characters or malformed
/// integers.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' if {
                let mut it = chars.clone();
                it.next();
                it.peek() == Some(&'/')
            } =>
            {
                // line comment
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = match s.as_str() {
                    "param" => TokenKind::Param,
                    "array" => TokenKind::Array,
                    "distribute" => TokenKind::Distribute,
                    "replicate" => TokenKind::Replicate,
                    "moves" => TokenKind::Moves,
                    "balance" => TokenKind::Balance,
                    "for" => TokenKind::For,
                    "block" => TokenKind::Block,
                    "cyclic" => TokenKind::Cyclic,
                    "whole" => TokenKind::Whole,
                    _ => TokenKind::Ident(s),
                };
                out.push(Token { kind, line });
                continue;
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: u64 = s
                    .parse()
                    .map_err(|_| CompileError::at(line, format!("integer overflow: {s}")))?;
                out.push(Token {
                    kind: TokenKind::Int(v),
                    line,
                });
                continue;
            }
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::DotDot,
                        line,
                    });
                } else {
                    return Err(CompileError::at(line, "expected '..'".to_string()));
                }
            }
            '+' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token {
                        kind: TokenKind::PlusAssign,
                        line,
                    });
                } else {
                    out.push(Token {
                        kind: TokenKind::Plus,
                        line,
                    });
                }
            }
            '=' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Assign,
                    line,
                });
            }
            '-' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Minus,
                    line,
                });
            }
            '*' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Star,
                    line,
                });
            }
            '/' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Slash,
                    line,
                });
            }
            '{' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
            }
            '}' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
            }
            '[' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::LBracket,
                    line,
                });
            }
            ']' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::RBracket,
                    line,
                });
            }
            '(' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
            }
            ';' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
            }
            ',' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
            }
            other => {
                return Err(CompileError::at(
                    line,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let k = kinds("param R; balance for i");
        assert_eq!(
            k,
            vec![
                TokenKind::Param,
                TokenKind::Ident("R".into()),
                TokenKind::Semi,
                TokenKind::Balance,
                TokenKind::For,
                TokenKind::Ident("i".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_range_and_ops() {
        let k = kinds("0..R a += b * 2");
        assert!(k.contains(&TokenKind::DotDot));
        assert!(k.contains(&TokenKind::PlusAssign));
        assert!(k.contains(&TokenKind::Star));
        assert!(k.contains(&TokenKind::Int(2)));
    }

    #[test]
    fn skips_comments() {
        let k = kinds("param R; // a comment\nparam C;");
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Param).count(), 2);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("param R;\nparam C;").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[3].line, 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("param %$").is_err());
    }

    #[test]
    fn single_dot_is_error() {
        assert!(lex("0.5").is_err());
    }
}

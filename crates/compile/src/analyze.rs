//! Semantic analysis and symbolic cost extraction.
//!
//! Beyond validation, this pass produces what the paper's compiler hands
//! to the run-time system (Section 5.1): "The compiler also helps to
//! generate symbolic cost functions for the iteration cost and
//! communication cost." Here those are:
//!
//! * `W(i)` — basic operations of iteration `i` of each balanced loop,
//!   counted from the statement operators times the (possibly
//!   index-dependent) inner trip counts;
//! * `DC` — bytes of array data per moved iteration, from the
//!   `distribute(...)`/`moves` annotations;
//! * the *uniformity* of each balanced loop (a triangular loop — any
//!   inner bound referencing the balanced index — is flagged for the
//!   bitonic transformation).

use crate::ast::{DimDist, Expr, Loop, Node, Program};
use std::collections::BTreeMap;
use std::fmt;

/// A compilation error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    pub line: usize,
    pub message: String,
}

impl CompileError {
    pub fn at(line: usize, message: String) -> Self {
        Self { line, message }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// A validated program with per-loop analysis results.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedProgram {
    pub program: Program,
    /// One entry per top-level loop, in source order.
    pub loops: Vec<LoopInfo>,
}

/// Analysis results for one top-level loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// Balanced-loop index variable.
    pub var: String,
    /// Whether the loop carries the `balance` annotation.
    pub balance: bool,
    /// Whether every iteration has the same operation count.
    pub uniform: bool,
    /// Arrays whose slices travel with moved iterations.
    pub moving_arrays: Vec<String>,
    /// Human-readable symbolic form of the per-iteration work.
    pub work_desc: String,
}

/// Validate `program` and extract per-loop information.
///
/// # Errors
/// Returns the first semantic error found.
pub fn analyze(program: Program) -> Result<AnalyzedProgram, CompileError> {
    // Array dimension expressions may only use parameters.
    for a in &program.arrays {
        for d in &a.dims {
            let mut vars = Vec::new();
            d.free_vars(&mut vars);
            for v in &vars {
                if !program.params.contains(v) {
                    return Err(CompileError::at(
                        a.line,
                        format!(
                            "array {}: dimension uses undeclared parameter '{v}'",
                            a.name
                        ),
                    ));
                }
            }
        }
        let n_dist = a.dist.iter().filter(|d| **d != DimDist::Whole).count();
        if n_dist > 1 {
            return Err(CompileError::at(
                a.line,
                format!(
                    "array {}: at most one distributed dimension is supported",
                    a.name
                ),
            ));
        }
        if a.moves && n_dist == 0 {
            return Err(CompileError::at(
                a.line,
                format!("array {}: a fully replicated array cannot move", a.name),
            ));
        }
    }

    let mut infos = Vec::new();
    for l in &program.loops {
        let mut scope: Vec<String> = program.params.clone();
        check_loop(&program, l, &mut scope, true)?;
        let uniform = !bounds_mention(&l.body, &l.var);
        let moving: Vec<String> = program
            .arrays
            .iter()
            .filter(|a| a.moves)
            .map(|a| a.name.clone())
            .collect();
        infos.push(LoopInfo {
            var: l.var.clone(),
            balance: l.balance,
            uniform,
            moving_arrays: moving,
            work_desc: describe_work(l),
        });
    }
    Ok(AnalyzedProgram {
        program,
        loops: infos,
    })
}

fn check_loop(
    program: &Program,
    l: &Loop,
    scope: &mut Vec<String>,
    top: bool,
) -> Result<(), CompileError> {
    if l.balance && !top {
        return Err(CompileError::at(
            l.line,
            "only the outermost loop of a nest can be balanced".into(),
        ));
    }
    for b in [&l.lo, &l.hi] {
        let mut vars = Vec::new();
        b.free_vars(&mut vars);
        for v in &vars {
            if !scope.contains(v) {
                return Err(CompileError::at(
                    l.line,
                    format!("loop bound uses unknown variable '{v}'"),
                ));
            }
        }
    }
    scope.push(l.var.clone());
    for node in &l.body {
        match node {
            Node::Loop(inner) => check_loop(program, inner, scope, false)?,
            Node::Stmt(s) => {
                for e in [&s.target, &s.value] {
                    check_refs(program, e, scope, s.line)?;
                }
            }
        }
    }
    scope.pop();
    Ok(())
}

fn check_refs(
    program: &Program,
    e: &Expr,
    scope: &[String],
    line: usize,
) -> Result<(), CompileError> {
    match e {
        Expr::Int(_) => Ok(()),
        Expr::Var(v) => {
            if scope.contains(v) {
                Ok(())
            } else {
                Err(CompileError::at(line, format!("unknown variable '{v}'")))
            }
        }
        Expr::ArrayRef(name, idx) => {
            let Some(decl) = program.arrays.iter().find(|a| a.name == *name) else {
                return Err(CompileError::at(line, format!("unknown array '{name}'")));
            };
            if decl.dims.len() != idx.len() {
                return Err(CompileError::at(
                    line,
                    format!(
                        "array {name}: {} subscripts for {} dimensions",
                        idx.len(),
                        decl.dims.len()
                    ),
                ));
            }
            for i in idx {
                check_refs(program, i, scope, line)?;
            }
            Ok(())
        }
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
            check_refs(program, a, scope, line)?;
            check_refs(program, b, scope, line)
        }
    }
}

/// Does any loop bound in `body` reference `var`? (Triangularity test.)
pub fn bounds_mention(body: &[Node], var: &str) -> bool {
    body.iter().any(|n| match n {
        Node::Loop(l) => l.lo.mentions(var) || l.hi.mentions(var) || bounds_mention(&l.body, var),
        Node::Stmt(_) => false,
    })
}

/// Basic operations executed by one iteration of `l` (the balanced index
/// bound in `env`), interpreting nested loops. Inner loops whose own index
/// does not influence deeper trip counts are multiplied out; truly
/// index-dependent ones are summed.
pub fn ops_of_body(body: &[Node], env: &mut BTreeMap<String, i64>) -> f64 {
    let mut total = 0.0;
    for node in body {
        match node {
            Node::Stmt(s) => {
                let mut ops = s.value.op_count() + s.target.op_count();
                if s.accumulate {
                    ops += 1;
                }
                total += ops as f64;
            }
            Node::Loop(l) => {
                let lo = l.lo.eval(env);
                let hi = l.hi.eval(env);
                let trip = (hi - lo).max(0);
                if trip == 0 {
                    continue;
                }
                if bounds_mention(&l.body, &l.var) {
                    // Deeper bounds depend on this index: sum exactly.
                    for i in lo..hi {
                        env.insert(l.var.clone(), i);
                        total += ops_of_body(&l.body, env);
                    }
                    env.remove(&l.var);
                } else {
                    env.insert(l.var.clone(), lo);
                    let per = ops_of_body(&l.body, env);
                    env.remove(&l.var);
                    total += trip as f64 * per;
                }
            }
        }
    }
    total
}

/// Render the symbolic per-iteration work of a balanced loop, e.g.
/// `(C - 0)·(R2 - 0)·2 ops` for MXM.
fn describe_work(l: &Loop) -> String {
    fn go(body: &[Node], parts: &mut Vec<String>) -> u64 {
        let mut stmt_ops = 0;
        for node in body {
            match node {
                Node::Stmt(s) => {
                    stmt_ops += s.value.op_count() + s.target.op_count() + u64::from(s.accumulate);
                }
                Node::Loop(l) => {
                    parts.push(format!("({} - {})", l.hi, l.lo));
                    stmt_ops += go(&l.body, parts);
                }
            }
        }
        stmt_ops
    }
    let mut parts = Vec::new();
    let ops = go(&l.body, &mut parts);
    parts.push(format!("{ops} ops"));
    parts.join(" · ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn analyzed(src: &str) -> AnalyzedProgram {
        analyze(parse(&lex(src).unwrap()).unwrap()).unwrap()
    }

    fn analyze_err(src: &str) -> CompileError {
        analyze(parse(&lex(src).unwrap()).unwrap()).unwrap_err()
    }

    const MXM: &str = r#"
        param R; param C; param R2;
        array Z[R][C]  distribute(block, whole);
        array X[R][R2] distribute(block, whole) moves;
        array Y[R2][C] replicate;
        balance for i = 0..R {
          for j = 0..C { for k = 0..R2 { Z[i][j] += X[i][k] * Y[k][j]; } }
        }
    "#;

    #[test]
    fn mxm_is_uniform_with_one_moving_array() {
        let a = analyzed(MXM);
        assert_eq!(a.loops.len(), 1);
        let l = &a.loops[0];
        assert!(l.balance);
        assert!(l.uniform);
        assert_eq!(l.moving_arrays, vec!["X"]);
        assert!(l.work_desc.contains("ops"), "{}", l.work_desc);
    }

    #[test]
    fn mxm_op_count_is_two_per_inner_iteration() {
        let a = analyzed(MXM);
        let l = &a.program.loops[0];
        let mut env: BTreeMap<String, i64> = [("R", 8i64), ("C", 5), ("R2", 3)]
            .map(|(k, v)| (k.to_string(), v))
            .into();
        env.insert("i".into(), 0);
        let ops = ops_of_body(&l.body, &mut env);
        // mul + accumulate-add per innermost statement.
        assert!((ops - (5.0 * 3.0 * 2.0)).abs() < 1e-9, "ops = {ops}");
    }

    #[test]
    fn triangular_loop_detected() {
        let a = analyzed(
            "param N; array A[N][N] distribute(whole, block) moves;\nbalance for i = 0..N { for j = 0..i { A[j][i] += A[i][j] * 2; } }",
        );
        assert!(
            !a.loops[0].uniform,
            "inner bound 0..i must flag non-uniform"
        );
    }

    #[test]
    fn triangular_ops_grow_with_index() {
        let a = analyzed(
            "param N; array A[N][N] distribute(whole, block) moves;\nbalance for i = 0..N { for j = 0..i { A[j][i] += A[i][j] * 2; } }",
        );
        let l = &a.program.loops[0];
        let mut env: BTreeMap<String, i64> = [("N".to_string(), 10i64)].into();
        env.insert("i".into(), 2);
        let at2 = ops_of_body(&l.body, &mut env);
        env.insert("i".into(), 8);
        let at8 = ops_of_body(&l.body, &mut env);
        assert!((at2 - 4.0).abs() < 1e-9);
        assert!((at8 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_unknown_parameter_in_dims() {
        let e = analyze_err("array A[Q] distribute(block);");
        assert!(e.message.contains("undeclared parameter"), "{e}");
    }

    #[test]
    fn rejects_unknown_array() {
        let e = analyze_err("param N; array A[N] distribute(block);\nfor i = 0..N { B[i] = 1; }");
        assert!(e.message.contains("unknown array"), "{e}");
    }

    #[test]
    fn rejects_subscript_arity_mismatch() {
        let e =
            analyze_err("param N; array A[N] distribute(block);\nfor i = 0..N { A[i][i] = 1; }");
        assert!(e.message.contains("subscripts"), "{e}");
    }

    #[test]
    fn rejects_moving_replicated_array() {
        let e = analyze_err("param N; array A[N] replicate moves;");
        assert!(e.message.contains("cannot move"), "{e}");
    }

    #[test]
    fn rejects_nested_balance() {
        let e = analyze_err(
            "param N; array A[N] distribute(block);\nbalance for i = 0..N { balance for j = 0..N { A[j] = 1; } }",
        );
        assert!(e.message.contains("outermost"), "{e}");
    }

    #[test]
    fn rejects_out_of_scope_loop_variable() {
        let e = analyze_err(
            "param N; array A[N] distribute(block);\nfor i = 0..N { A[i] = 1; }\nfor j = 0..i { A[j] = 1; }",
        );
        assert!(e.message.contains("unknown variable"), "{e}");
    }
}

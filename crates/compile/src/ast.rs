//! Abstract syntax of the annotated loop-nest language.

use std::collections::BTreeMap;
use std::fmt;

/// Arithmetic expression over integer literals, parameters and loop
/// indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    Int(u64),
    /// A parameter or a loop index.
    Var(String),
    /// An array element reference (only valid inside statements).
    ArrayRef(String, Vec<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluate with an environment of parameter/index values. Array
    /// references evaluate to 0 (they carry no compile-time value — only
    /// their *presence* matters for operation counting).
    ///
    /// # Panics
    /// Panics on an unbound variable (analysis validates bindings first).
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> i64 {
        match self {
            Expr::Int(v) => *v as i64,
            Expr::Var(name) => *env
                .get(name)
                .unwrap_or_else(|| panic!("unbound variable '{name}' in expression")),
            Expr::ArrayRef(..) => 0,
            Expr::Add(a, b) => a.eval(env) + b.eval(env),
            Expr::Sub(a, b) => a.eval(env) - b.eval(env),
            Expr::Mul(a, b) => a.eval(env) * b.eval(env),
            Expr::Div(a, b) => {
                let d = b.eval(env);
                assert!(d != 0, "division by zero in bound expression");
                a.eval(env) / d
            }
        }
    }

    /// All free variable names (parameters and indices), excluding array
    /// names.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::ArrayRef(_, idx) => {
                for e in idx {
                    e.free_vars(out);
                }
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }

    /// Does this expression mention `name` as a variable?
    pub fn mentions(&self, name: &str) -> bool {
        let mut vars = Vec::new();
        self.free_vars(&mut vars);
        vars.iter().any(|v| v == name)
    }

    /// Count arithmetic operators (the "basic operations" of the model's
    /// `W_ij`), recursing through the whole tree.
    pub fn op_count(&self) -> u64 {
        match self {
            Expr::Int(_) | Expr::Var(_) => 0,
            Expr::ArrayRef(_, idx) => idx.iter().map(Expr::op_count).sum(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.op_count() + b.op_count()
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::ArrayRef(name, idx) => {
                write!(f, "{name}")?;
                for e in idx {
                    write!(f, "[{e}]")?;
                }
                Ok(())
            }
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// Per-dimension distribution annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimDist {
    Block,
    Cyclic,
    Whole,
}

/// `array NAME[dim]... distribute(...)? moves? ;`
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    pub name: String,
    pub dims: Vec<Expr>,
    /// One entry per dimension; `replicate` yields all-`Whole`.
    pub dist: Vec<DimDist>,
    /// Whether this array's slices travel with moved iterations.
    pub moves: bool,
    pub line: usize,
}

/// An assignment statement inside a loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub target: Expr,
    /// `+=` counts one extra add.
    pub accumulate: bool,
    pub value: Expr,
    pub line: usize,
}

/// One `for` loop (possibly annotated `balance`).
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    pub var: String,
    pub lo: Expr,
    pub hi: Expr,
    pub balance: bool,
    pub body: Vec<Node>,
    pub line: usize,
}

/// Body node: nested loop or statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Loop(Loop),
    Stmt(Stmt),
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub params: Vec<String>,
    pub arrays: Vec<ArrayDecl>,
    pub loops: Vec<Loop>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn eval_arithmetic() {
        // (R + 2) * C
        let e = Expr::Mul(
            Box::new(Expr::Add(
                Box::new(Expr::Var("R".into())),
                Box::new(Expr::Int(2)),
            )),
            Box::new(Expr::Var("C".into())),
        );
        assert_eq!(e.eval(&env(&[("R", 3), ("C", 10)])), 50);
    }

    #[test]
    fn op_count_counts_operators() {
        // Z[i][j] + X[i][k] * Y[k][j] : one add, one mul
        let e = Expr::Add(
            Box::new(Expr::ArrayRef("Z".into(), vec![Expr::Var("i".into())])),
            Box::new(Expr::Mul(
                Box::new(Expr::ArrayRef("X".into(), vec![])),
                Box::new(Expr::ArrayRef("Y".into(), vec![])),
            )),
        );
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn mentions_finds_index_vars() {
        let e = Expr::Sub(Box::new(Expr::Var("i".into())), Box::new(Expr::Int(1)));
        assert!(e.mentions("i"));
        assert!(!e.mentions("j"));
    }

    #[test]
    fn display_roundtrips_shape() {
        let e = Expr::Mul(
            Box::new(Expr::Var("C".into())),
            Box::new(Expr::Var("R2".into())),
        );
        assert_eq!(e.to_string(), "(C * R2)");
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn eval_unbound_panics() {
        Expr::Var("Q".into()).eval(&BTreeMap::new());
    }
}

//! Recursive-descent parser for the annotated loop-nest language.

use crate::analyze::CompileError;
use crate::ast::{ArrayDecl, DimDist, Expr, Loop, Node, Program, Stmt};
use crate::lexer::{Token, TokenKind};

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
}

/// Parse a token stream into a [`Program`].
///
/// # Errors
/// Returns [`CompileError`] with the offending line on syntax errors.
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    loop {
        match p.peek() {
            TokenKind::Eof => break,
            TokenKind::Param => {
                p.bump();
                let name = p.expect_ident()?;
                p.expect(&TokenKind::Semi)?;
                program.params.push(name);
            }
            TokenKind::Array => program.arrays.push(p.array_decl()?),
            TokenKind::Balance | TokenKind::For => program.loops.push(p.loop_nest()?),
            other => {
                return Err(p.err(format!("expected item, found {other:?}")));
            }
        }
    }
    Ok(program)
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> &TokenKind {
        let k = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, msg: String) -> CompileError {
        CompileError::at(self.line(), msg)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), CompileError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        if let TokenKind::Ident(s) = self.peek() {
            let s = s.clone();
            self.bump();
            Ok(s)
        } else {
            Err(self.err(format!("expected identifier, found {:?}", self.peek())))
        }
    }

    fn array_decl(&mut self) -> Result<ArrayDecl, CompileError> {
        let line = self.line();
        self.expect(&TokenKind::Array)?;
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while *self.peek() == TokenKind::LBracket {
            self.bump();
            dims.push(self.expr()?);
            self.expect(&TokenKind::RBracket)?;
        }
        if dims.is_empty() {
            return Err(self.err(format!("array {name} needs at least one dimension")));
        }
        let dist = match self.peek() {
            TokenKind::Distribute => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut d = Vec::new();
                loop {
                    d.push(match self.bump() {
                        TokenKind::Block => DimDist::Block,
                        TokenKind::Cyclic => DimDist::Cyclic,
                        TokenKind::Whole => DimDist::Whole,
                        other => {
                            return Err(CompileError::at(
                                line,
                                format!("expected block/cyclic/whole, found {other:?}"),
                            ))
                        }
                    });
                    if *self.peek() == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                if d.len() != dims.len() {
                    return Err(CompileError::at(
                        line,
                        format!(
                            "array {name}: {} distribution annotations for {} dimensions",
                            d.len(),
                            dims.len()
                        ),
                    ));
                }
                d
            }
            TokenKind::Replicate => {
                self.bump();
                vec![DimDist::Whole; dims.len()]
            }
            other => {
                return Err(self.err(format!(
                    "array {name} needs distribute(...) or replicate, found {other:?}"
                )))
            }
        };
        let moves = if *self.peek() == TokenKind::Moves {
            self.bump();
            true
        } else {
            false
        };
        self.expect(&TokenKind::Semi)?;
        Ok(ArrayDecl {
            name,
            dims,
            dist,
            moves,
            line,
        })
    }

    fn loop_nest(&mut self) -> Result<Loop, CompileError> {
        let line = self.line();
        let balance = if *self.peek() == TokenKind::Balance {
            self.bump();
            true
        } else {
            false
        };
        self.expect(&TokenKind::For)?;
        let var = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let lo = self.expr()?;
        self.expect(&TokenKind::DotDot)?;
        let hi = self.expr()?;
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            match self.peek() {
                TokenKind::For | TokenKind::Balance => body.push(Node::Loop(self.loop_nest()?)),
                _ => body.push(Node::Stmt(self.stmt()?)),
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Loop {
            var,
            lo,
            hi,
            balance,
            body,
            line,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let target = self.primary()?;
        if !matches!(target, Expr::ArrayRef(..) | Expr::Var(..)) {
            return Err(CompileError::at(
                line,
                "assignment target must be a reference".into(),
            ));
        }
        let accumulate = match self.bump() {
            TokenKind::Assign => false,
            TokenKind::PlusAssign => true,
            other => {
                return Err(CompileError::at(
                    line,
                    format!("expected = or +=, found {other:?}"),
                ))
            }
        };
        let value = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt {
            target,
            accumulate,
            value,
            line,
        })
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                TokenKind::Minus => {
                    self.bump();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.primary()?));
                }
                TokenKind::Slash => {
                    self.bump();
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.primary()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if *self.peek() == TokenKind::LBracket {
                    let mut idx = Vec::new();
                    while *self.peek() == TokenKind::LBracket {
                        self.bump();
                        idx.push(self.expr()?);
                        self.expect(&TokenKind::RBracket)?;
                    }
                    Ok(Expr::ArrayRef(name, idx))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_params_and_arrays() {
        let p = parse_src(
            "param R; param C;\narray A[R][C] distribute(block, whole) moves;\narray B[C] replicate;",
        );
        assert_eq!(p.params, vec!["R", "C"]);
        assert_eq!(p.arrays.len(), 2);
        assert!(p.arrays[0].moves);
        assert_eq!(p.arrays[0].dist, vec![DimDist::Block, DimDist::Whole]);
        assert_eq!(p.arrays[1].dist, vec![DimDist::Whole]);
    }

    #[test]
    fn parses_nested_balanced_loop() {
        let p = parse_src(
            "param N; array A[N] distribute(block) moves;\nbalance for i = 0..N { for j = 0..i { A[i] += A[j] * 2; } }",
        );
        assert_eq!(p.loops.len(), 1);
        let l = &p.loops[0];
        assert!(l.balance);
        assert_eq!(l.var, "i");
        assert_eq!(l.body.len(), 1);
        let Node::Loop(inner) = &l.body[0] else {
            panic!("expected inner loop")
        };
        assert!(!inner.balance);
        assert!(inner.hi.mentions("i"), "triangular bound must reference i");
    }

    #[test]
    fn parses_accumulate_statement() {
        let p = parse_src("param N; array A[N] distribute(block);\nfor i = 0..N { A[i] = i + 1; }");
        let Node::Stmt(s) = &p.loops[0].body[0] else {
            panic!()
        };
        assert!(!s.accumulate);
    }

    #[test]
    fn rejects_mismatched_distribution_arity() {
        let toks = lex("array A[N][M] distribute(block);").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        let toks = lex("param R param C;").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let p =
            parse_src("param N; array A[N] distribute(block);\nfor i = 0..N { A[i] = 1 + 2 * 3; }");
        let Node::Stmt(s) = &p.loops[0].body[0] else {
            panic!()
        };
        // 1 + (2*3) = 7
        assert_eq!(s.value.eval(&Default::default()), 7);
    }
}

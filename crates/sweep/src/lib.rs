//! Deterministic parallel sweep execution.
//!
//! Every experiment in this repository is a *sweep*: a grid of independent
//! cells — (workload, cluster, load draw, strategy) — each of which is a
//! pure function of its own inputs. The discrete-event simulator is
//! single-threaded per run but runs share nothing, so the whole grid is
//! embarrassingly parallel, the same shape rDLB (Mohammed et al., 2019)
//! and task-parallel DLB runtimes (Zafari & Larsson, 2018) exploit.
//!
//! [`SweepExecutor`] fans such a grid across a scoped `std::thread` worker
//! pool and guarantees **bit-identical output to the serial path**:
//!
//! * every job is identified by its index in the submitted grid and must
//!   be a pure function of that index (all seed derivation happens from
//!   the index, never from execution order);
//! * workers pull indices from a shared atomic counter (dynamic
//!   self-scheduling — ironically, the very first scheme the paper's
//!   Section 2.2 surveys), so an expensive cell never stalls the pool;
//! * results are merged back **in index order**, making the output
//!   `Vec` independent of which worker computed which cell and of any
//!   scheduling interleaving.
//!
//! No external crates: scoped threads borrow the jobs and inputs, so the
//! executor works with plain references and needs no `'static` bounds.

pub mod executor;

pub use executor::SweepExecutor;

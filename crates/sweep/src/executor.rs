//! The scoped worker pool.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "DLB_SWEEP_THREADS";

/// A deterministic parallel map over independent jobs.
///
/// The executor owns nothing but a thread count; each call to
/// [`SweepExecutor::run_indexed`] spins up a scoped pool, drains the job
/// grid through an atomic index counter, and merges the results in index
/// order. Output is guaranteed bit-identical to the serial execution of
/// the same jobs as long as each job is a pure function of its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepExecutor {
    threads: usize,
}

impl SweepExecutor {
    /// An executor with exactly `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "executor needs at least one worker");
        Self { threads }
    }

    /// The serial executor: one worker, no threads spawned. The reference
    /// behaviour every parallel configuration must reproduce exactly.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Default executor: `DLB_SWEEP_THREADS` if set (and ≥ 1), else the
    /// machine's available parallelism, else serial.
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Self::new(n);
                }
            }
        }
        Self::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `n` index-identified jobs and return their results in index
    /// order.
    ///
    /// `f(i)` must be a pure function of `i` (derive seeds from the
    /// index, not from shared mutable state); under that contract the
    /// returned `Vec` is bit-identical for every thread count, because
    /// the merge reorders by index regardless of completion order.
    ///
    /// Worker panics are propagated to the caller after the scope joins.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let buckets: Vec<thread::Result<Vec<(usize, R)>>> = thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for bucket in buckets {
            match bucket {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        debug_assert!(slots[i].is_none(), "job {i} computed twice");
                        slots[i] = Some(r);
                    }
                }
                Err(cause) => panic::resume_unwind(cause),
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} never ran")))
            .collect()
    }

    /// Parallel map over a slice, preserving input order in the output.
    pub fn par_map<I, R, F>(&self, items: &[I], f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(&I) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(&items[i]))
    }
}

impl Default for SweepExecutor {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_on_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = SweepExecutor::serial().par_map(&items, |&x| x * x + 1);
        for threads in [2, 3, 8, 64] {
            let par = SweepExecutor::new(threads).par_map(&items, |&x| x * x + 1);
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_single_item_grids() {
        let exec = SweepExecutor::new(4);
        let empty: Vec<u32> = exec.par_map(&Vec::<u32>::new(), |&x| x);
        assert!(empty.is_empty());
        assert_eq!(exec.par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_jobs_still_merge_by_index() {
        // Make early indices slow so a naive completion-order merge
        // would come back scrambled.
        let exec = SweepExecutor::new(4);
        let out = exec.run_indexed(16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_non_static_inputs() {
        let data = vec![1.0f64, 2.0, 3.0];
        let slice: &[f64] = &data;
        let out = SweepExecutor::new(2).run_indexed(3, |i| slice[i] * 2.0);
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        SweepExecutor::new(2).run_indexed(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = SweepExecutor::new(0);
    }
}

//! # customized-dlb
//!
//! A full reproduction of **"Customized Dynamic Load Balancing for a
//! Network of Workstations"** (Zaki, Li & Parthasarathy, HPDC'96 /
//! Rochester TR 602): four interrupt-based, receiver-initiated dynamic
//! load balancing strategies (global/local × centralized/distributed), an
//! analytic cost model that *selects* the best strategy per loop, a
//! mini-compiler that turns annotated sequential loop nests into SPMD
//! plans with DLB calls, and the substrates needed to evaluate all of it:
//! a discrete-event NOW simulator, a parametric Ethernet model, the
//! paper's discrete random external-load generator, and a PVM-flavoured
//! threaded message-passing runtime.
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`](dlb_core) | `dlb-core` | the four strategies, balancer decision logic, protocol planning |
//! | [`model`](dlb_model) | `dlb-model` | Section-4 recurrences + hybrid decision process |
//! | [`compile`](dlb_compile) | `dlb-compile` | annotated loop-nest language → SPMD plan + Fig-3 pseudo-code |
//! | [`apps`](dlb_apps) | `dlb-apps` | MXM and TRFD workloads (models + real kernels) |
//! | [`sim`](now_sim) | `now-sim` | discrete-event network-of-workstations simulator |
//! | [`net`](now_net) | `now-net` | medium model, pattern costs, polyfit characterization |
//! | [`load`](now_load) | `now-load` | external load functions and effective-speed math |
//! | [`pvm`](pvm_rt) | `pvm-rt` | threaded PVM-style runtime + real-data DLB executor |
//! | [`fault`](now_fault) | `now-fault` | seeded fault injection + failure-aware protocol parameters |
//! | [`serve`](now_serve) | `now-serve` | multi-client run server with a content-addressed result memo; its worker pool is the parallel grid engine for experiment sweeps |
//!
//! ## Quickstart
//!
//! ```
//! use customized_dlb::prelude::*;
//!
//! // A 4-workstation NOW with the paper's random external load.
//! let cluster = ClusterSpec::paper_homogeneous(4, 42, 2.0);
//! // A uniform parallel loop: 200 iterations, 10 ms each, 800 B/iter.
//! let work = UniformLoop::new(200, 0.01, 800);
//! // Run noDLB + all four strategies and pick the winner.
//! let sweep = run_all_strategies(&cluster, &work, 2);
//! let best = sweep.actual_order()[0];
//! println!("best strategy: {best}");
//! # assert_eq!(sweep.no_dlb.total_iters, 200);
//! ```

pub use dlb_apps as apps;
pub use dlb_compile as compile;
pub use dlb_core as core;
pub use dlb_model as model;
pub use now_fault as fault;
pub use now_load as load;
pub use now_net as net;
pub use now_serve as serve;
pub use now_sim as sim;
pub use pvm_rt as pvm;

/// Everything most programs need.
pub mod prelude {
    pub use dlb_apps::{MxmConfig, MxmData, TrfdConfig, TrfdData};
    pub use dlb_compile::{compile, compile_and_bind};
    pub use dlb_core::{
        AdaptiveConfig, CostFnLoop, FoldedLoop, IndexedLoop, LoopWorkload, Strategy,
        StrategyConfig, UniformLoop,
    };
    pub use dlb_model::{choose_strategy, predict, predict_all, SystemModel};
    pub use now_fault::{FailurePolicy, FaultPlan};
    pub use now_load::{DiscreteRandomLoad, LoadFunction, LoadSpec};
    pub use now_net::NetworkParams;
    pub use now_serve::{MemoConfig, RunKind, RunServer, RunSpec, ServeConfig, WorkloadSpec};
    pub use now_sim::{
        run_all_strategies, run_all_strategies_arc, run_dlb, run_dlb_adaptive,
        run_dlb_adaptive_arc, run_dlb_adaptive_faulty, run_dlb_arc, run_dlb_faulty,
        run_dlb_periodic, run_no_dlb, run_no_dlb_arc, ClusterSpec, RunReport,
    };
    pub use pvm_rt::{run_loop, RowKernel};
}
